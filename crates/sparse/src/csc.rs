//! Compressed sparse column (CSC) matrices.
//!
//! CSC is the working format of every SpKAdd algorithm in the paper: the
//! `j`-th columns of the `k` inputs are added independently, so the column
//! is the natural unit of both storage and parallelism.

use crate::{CooMatrix, CsrMatrix, Element, Scalar, SparseError};

/// A borrowed view of one column: parallel slices of row indices and values.
///
/// This is the `(rowid, val)` tuple list the paper's Algorithms 3–8 consume.
#[derive(Debug, Clone, Copy)]
pub struct ColView<'a, T> {
    /// Row indices of the nonzeros in this column.
    pub rows: &'a [u32],
    /// Values of the nonzeros in this column, parallel to `rows`.
    pub vals: &'a [T],
}

impl<'a, T: Element> ColView<'a, T> {
    /// Number of stored entries in the column.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the column holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates `(row, value)` pairs in storage order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, T)> + 'a {
        self.rows.iter().copied().zip(self.vals.iter().copied())
    }

    /// Restricts the view to entries with row index in `[r1, r2)`.
    ///
    /// Requires the column to be sorted by row index; locates the range with
    /// two binary searches, which is how the sliding-hash algorithm
    /// (paper Alg 7/8, `A_i(r1:r2, j)`) carves row panels out of columns.
    pub fn row_range(&self, r1: u32, r2: u32) -> ColView<'a, T> {
        let lo = self.rows.partition_point(|&r| r < r1);
        let hi = self.rows.partition_point(|&r| r < r2);
        ColView {
            rows: &self.rows[lo..hi],
            vals: &self.vals[lo..hi],
        }
    }
}

/// Sparse matrix in compressed sparse column format.
///
/// Storage: `colptr` has `ncols + 1` entries; the nonzeros of column `j`
/// live at positions `colptr[j] .. colptr[j+1]` of the parallel arrays
/// `rowidx` / `values`.
///
/// The container does **not** force columns to be sorted or duplicate-free;
/// [`CscMatrix::is_sorted`] tests for the canonical form and
/// [`CscMatrix::sort_columns`] / [`CscMatrix::canonicalize`] establish it.
/// This looseness is deliberate: a headline result of the paper is that the
/// hash SpKAdd accepts *unsorted* inputs, which lets the upstream SpGEMM
/// skip sorting its intermediate products (Fig 6).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T = f64> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Element> CscMatrix<T> {
    /// Builds a matrix from raw CSC arrays, validating the structure.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if nrows > u32::MAX as usize {
            return Err(SparseError::InvalidStructure(format!(
                "nrows {nrows} exceeds u32 index range"
            )));
        }
        if colptr.len() != ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "colptr length {} != ncols + 1 = {}",
                colptr.len(),
                ncols + 1
            )));
        }
        if colptr[0] != 0 {
            return Err(SparseError::InvalidStructure(
                "colptr[0] must be 0".to_string(),
            ));
        }
        if colptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidStructure(
                "colptr must be non-decreasing".to_string(),
            ));
        }
        let nnz = *colptr.last().unwrap();
        if rowidx.len() != nnz || values.len() != nnz {
            return Err(SparseError::InvalidStructure(format!(
                "array lengths (rowidx {}, values {}) disagree with colptr nnz {}",
                rowidx.len(),
                values.len(),
                nnz
            )));
        }
        if let Some(&bad) = rowidx.iter().find(|&&r| r as usize >= nrows) {
            return Err(SparseError::InvalidStructure(format!(
                "row index {bad} out of bounds for {nrows} rows"
            )));
        }
        Ok(Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Builds a matrix from raw CSC arrays without validation.
    ///
    /// The caller must uphold the invariants checked by [`CscMatrix::try_new`].
    /// Used on hot construction paths where the arrays were just produced by
    /// a kernel that guarantees them; debug builds still assert.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(colptr.len(), ncols + 1);
        debug_assert_eq!(rowidx.len(), *colptr.last().unwrap_or(&0));
        debug_assert_eq!(values.len(), rowidx.len());
        debug_assert!(rowidx.iter().all(|&r| (r as usize) < nrows));
        Self {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// An `nrows × ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        *self.colptr.last().unwrap()
    }

    /// Column pointer array (`ncols + 1` entries).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array.
    #[inline]
    pub fn rowidx(&self) -> &[u32] {
        &self.rowidx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable value array (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Borrowed view of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> ColView<'_, T> {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        ColView {
            rows: &self.rowidx[lo..hi],
            vals: &self.values[lo..hi],
        }
    }

    /// `true` when every column is strictly sorted by row index (which also
    /// implies no duplicate entries) — the canonical CSC form, and the input
    /// precondition of the 2-way and heap SpKAdd algorithms.
    pub fn is_sorted(&self) -> bool {
        (0..self.ncols).all(|j| self.col(j).rows.windows(2).all(|w| w[0] < w[1]))
    }

    /// `true` when every column is non-decreasing by row index (duplicates
    /// allowed).
    pub fn is_sorted_with_duplicates(&self) -> bool {
        (0..self.ncols).all(|j| self.col(j).rows.windows(2).all(|w| w[0] <= w[1]))
    }

    /// Sorts each column by row index (values carried along). Duplicates are
    /// preserved; use [`CscMatrix::canonicalize`] to also merge them.
    pub fn sort_columns(&mut self) {
        let mut perm: Vec<u32> = Vec::new();
        let mut tmp_rows: Vec<u32> = Vec::new();
        let mut tmp_vals: Vec<T> = Vec::new();
        for j in 0..self.ncols {
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            let rows = &self.rowidx[lo..hi];
            if rows.windows(2).all(|w| w[0] <= w[1]) {
                continue;
            }
            perm.clear();
            perm.extend(0..(hi - lo) as u32);
            perm.sort_unstable_by_key(|&p| rows[p as usize]);
            tmp_rows.clear();
            tmp_vals.clear();
            for &p in &perm {
                tmp_rows.push(self.rowidx[lo + p as usize]);
                tmp_vals.push(self.values[lo + p as usize]);
            }
            self.rowidx[lo..hi].copy_from_slice(&tmp_rows);
            self.values[lo..hi].copy_from_slice(&tmp_vals);
        }
    }

    /// Applies `f` to every stored value in place.
    pub fn map_values(&mut self, mut f: impl FnMut(T) -> T) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Iterates all stored entries as `(row, col, value)` in column order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        (0..self.ncols).flat_map(move |j| self.col(j).iter().map(move |(r, v)| (r, j as u32, v)))
    }

    /// Per-column nonzero counts (length `ncols`).
    pub fn col_nnz_counts(&self) -> Vec<usize> {
        self.colptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Transposes by counting-sort over rows — O(nnz + nrows). The result
    /// has sorted columns regardless of the input ordering.
    pub fn transpose(&self) -> CscMatrix<T> {
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rowidx {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let colptr_t = counts.clone();
        let nnz = self.nnz();
        let mut rowidx_t = vec![0u32; nnz];
        let mut values_t = vec![T::default(); nnz];
        let mut cursor = counts;
        for j in 0..self.ncols {
            for (r, v) in self.col(j).iter() {
                let dst = cursor[r as usize];
                rowidx_t[dst] = j as u32;
                values_t[dst] = v;
                cursor[r as usize] += 1;
            }
        }
        CscMatrix::from_parts(self.ncols, self.nrows, colptr_t, rowidx_t, values_t)
    }

    /// Converts to CSR (same numerical matrix, row-compressed).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let t = self.transpose();
        CsrMatrix::from_parts(self.nrows, self.ncols, t.colptr, t.rowidx, t.values)
    }

    /// Converts to coordinate (triplet) format.
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        coo
    }

    /// Extracts the column slab `[c1, c2)` as a new `nrows × (c2-c1)` matrix.
    ///
    /// This is the paper's workload-construction primitive: an `m × (n·k)`
    /// R-MAT matrix is split along columns into `k` matrices of `m × n`.
    pub fn slice_cols(&self, c1: usize, c2: usize) -> CscMatrix<T> {
        assert!(c1 <= c2 && c2 <= self.ncols, "column slice out of bounds");
        let lo = self.colptr[c1];
        let hi = self.colptr[c2];
        let colptr = self.colptr[c1..=c2].iter().map(|p| p - lo).collect();
        CscMatrix::from_parts(
            self.nrows,
            c2 - c1,
            colptr,
            self.rowidx[lo..hi].to_vec(),
            self.values[lo..hi].to_vec(),
        )
    }

    /// Extracts the row slab `[r1, r2)` as a new `(r2-r1) × ncols` matrix
    /// with row indices rebased to the slab.
    ///
    /// Together with [`CscMatrix::slice_cols`] this is the 2D block
    /// distribution primitive of the SUMMA simulator. Sorted columns use
    /// binary search; unsorted columns fall back to a filtering scan.
    pub fn slice_rows(&self, r1: usize, r2: usize) -> CscMatrix<T> {
        assert!(r1 <= r2 && r2 <= self.nrows, "row slice out of bounds");
        let (r1, r2) = (r1 as u32, r2 as u32);
        let mut colptr = Vec::with_capacity(self.ncols + 1);
        colptr.push(0usize);
        let mut rowidx = Vec::new();
        let mut values = Vec::new();
        for j in 0..self.ncols {
            let col = self.col(j);
            if col.rows.windows(2).all(|w| w[0] <= w[1]) {
                let sub = col.row_range(r1, r2);
                rowidx.extend(sub.rows.iter().map(|&r| r - r1));
                values.extend_from_slice(sub.vals);
            } else {
                for (r, v) in col.iter() {
                    if r >= r1 && r < r2 {
                        rowidx.push(r - r1);
                        values.push(v);
                    }
                }
            }
            colptr.push(rowidx.len());
        }
        CscMatrix::from_parts((r2 - r1) as usize, self.ncols, colptr, rowidx, values)
    }

    /// Extracts the row slab `[r1, r2)` — alias of [`CscMatrix::slice_rows`]
    /// under the name the sharding layer uses: `row_slice` + [`CscMatrix::vstack`]
    /// are the partition/concatenate pair of the row-range-sharded
    /// aggregation service (`spk_server`).
    #[inline]
    pub fn row_slice(&self, r1: usize, r2: usize) -> CscMatrix<T> {
        self.slice_rows(r1, r2)
    }

    /// Splits the matrix into row slabs along `bounds` in **one pass**:
    /// `bounds` holds `parts + 1` non-decreasing boundaries starting at 0
    /// and ending at `nrows`; slab `p` receives rows
    /// `bounds[p]..bounds[p+1]`, rebased to the slab.
    ///
    /// Equivalent to calling [`CscMatrix::row_slice`] once per range but
    /// O(nnz + parts·ncols) total instead of `parts` full scans — this is
    /// the submit-path primitive of the sharded aggregation service.
    /// Sorted columns are carved with successive binary searches;
    /// unsorted columns are bucketed entry-by-entry.
    pub fn row_split(&self, bounds: &[usize]) -> Vec<CscMatrix<T>> {
        assert!(
            bounds.len() >= 2
                && bounds[0] == 0
                && *bounds.last().unwrap() == self.nrows
                && bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must run 0..=nrows, non-decreasing"
        );
        let parts = bounds.len() - 1;
        let mut colptrs: Vec<Vec<usize>> = (0..parts)
            .map(|_| {
                let mut v = Vec::with_capacity(self.ncols + 1);
                v.push(0usize);
                v
            })
            .collect();
        let mut rowidxs: Vec<Vec<u32>> = (0..parts).map(|_| Vec::new()).collect();
        let mut valss: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
        for j in 0..self.ncols {
            let col = self.col(j);
            if col.rows.windows(2).all(|w| w[0] <= w[1]) {
                let mut lo = 0usize;
                for p in 0..parts {
                    let hi = lo + col.rows[lo..].partition_point(|&r| (r as usize) < bounds[p + 1]);
                    let base = bounds[p] as u32;
                    rowidxs[p].extend(col.rows[lo..hi].iter().map(|&r| r - base));
                    valss[p].extend_from_slice(&col.vals[lo..hi]);
                    lo = hi;
                }
            } else {
                for (r, v) in col.iter() {
                    // First range whose end exceeds r owns the row (empty
                    // ranges share their boundary with the successor).
                    let p = bounds[1..].partition_point(|&b| b <= r as usize);
                    rowidxs[p].push(r - bounds[p] as u32);
                    valss[p].push(v);
                }
            }
            for p in 0..parts {
                colptrs[p].push(rowidxs[p].len());
            }
        }
        colptrs
            .into_iter()
            .zip(rowidxs)
            .zip(valss)
            .enumerate()
            .map(|(p, ((colptr, rowidx), values))| {
                CscMatrix::from_parts(
                    bounds[p + 1] - bounds[p],
                    self.ncols,
                    colptr,
                    rowidx,
                    values,
                )
            })
            .collect()
    }

    /// Vertically concatenates row slabs: the inverse of partitioning a
    /// matrix with [`CscMatrix::row_slice`] along contiguous row ranges.
    ///
    /// All parts must share one column count; the result has
    /// `Σ nrows(part)` rows, with part `p`'s row indices rebased by the
    /// total height of the parts above it. Within each output column the
    /// entries of the parts are laid down in part order, so stacking
    /// sorted slabs yields sorted columns. O(Σ nnz + ncols · parts).
    pub fn vstack(parts: &[&CscMatrix<T>]) -> Result<CscMatrix<T>, SparseError> {
        let first = parts.first().ok_or(SparseError::EmptyCollection)?;
        let ncols = first.ncols;
        let mut nrows = 0usize;
        for (i, p) in parts.iter().enumerate() {
            if p.ncols != ncols {
                // Only the column count is constrained; `expected` copies
                // the part's own row count so the reported mismatch
                // isolates the dimension that actually matters.
                return Err(SparseError::DimensionMismatch {
                    expected: (p.nrows, ncols),
                    found: p.shape(),
                    operand: i,
                });
            }
            nrows += p.nrows;
        }
        if nrows > u32::MAX as usize {
            return Err(SparseError::InvalidStructure(format!(
                "stacked height {nrows} exceeds u32 index range"
            )));
        }
        let nnz: usize = parts.iter().map(|p| p.nnz()).sum();
        let mut colptr = Vec::with_capacity(ncols + 1);
        colptr.push(0usize);
        let mut rowidx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for j in 0..ncols {
            let mut offset = 0u32;
            for p in parts {
                let col = p.col(j);
                rowidx.extend(col.rows.iter().map(|&r| r + offset));
                values.extend_from_slice(col.vals);
                offset += p.nrows as u32;
            }
            colptr.push(rowidx.len());
        }
        Ok(CscMatrix::from_parts(nrows, ncols, colptr, rowidx, values))
    }

    /// Deconstructs into the raw `(nrows, ncols, colptr, rowidx, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<u32>, Vec<T>) {
        (
            self.nrows,
            self.ncols,
            self.colptr,
            self.rowidx,
            self.values,
        )
    }
}

/// Operations that genuinely require arithmetic on the values — everything
/// above needs only the structural [`Element`] contract, which is what lets
/// the monoid-generic SpKAdd kernels run over e.g. `CscMatrix<bool>`.
impl<T: Scalar> CscMatrix<T> {
    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowidx: (0..n as u32).collect(),
            values: vec![T::one(); n],
        }
    }

    /// Value at `(i, j)`, or the additive identity when not stored.
    ///
    /// O(log nnz(col j)) for sorted columns, O(nnz(col j)) otherwise.
    pub fn get(&self, i: usize, j: usize) -> Result<T, SparseError> {
        if i >= self.nrows || j >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        let col = self.col(j);
        let target = i as u32;
        // Fast path: binary search when the column happens to be sorted.
        if col.rows.windows(2).all(|w| w[0] < w[1]) {
            return Ok(match col.rows.binary_search(&target) {
                Ok(pos) => col.vals[pos],
                Err(_) => T::default(),
            });
        }
        let mut acc = T::default();
        for (r, v) in col.iter() {
            if r == target {
                acc += v;
            }
        }
        Ok(acc)
    }

    /// Establishes canonical form: sorts each column and merges duplicate
    /// row indices by summation. Explicit zeros are kept (the paper's
    /// algorithms never drop them either; `nnz` means *stored* entries).
    pub fn canonicalize(&mut self) {
        self.sort_columns();
        let mut write = 0usize;
        let mut new_colptr = vec![0usize; self.ncols + 1];
        let mut read = 0usize;
        for (j, hi) in self.colptr[1..].iter().copied().enumerate() {
            let col_start = write;
            while read < hi {
                let r = self.rowidx[read];
                let mut v = self.values[read];
                read += 1;
                while read < hi && self.rowidx[read] == r {
                    v += self.values[read];
                    read += 1;
                }
                self.rowidx[write] = r;
                self.values[write] = v;
                write += 1;
            }
            new_colptr[j] = col_start;
        }
        new_colptr[self.ncols] = write;
        debug_assert!(new_colptr.windows(2).all(|w| w[0] <= w[1]));
        self.rowidx.truncate(write);
        self.values.truncate(write);
        self.colptr = new_colptr;
    }

    /// Drops stored entries whose value is exactly the additive identity.
    pub fn prune_zeros(&mut self) {
        let mut write = 0usize;
        let mut new_colptr = vec![0usize; self.ncols + 1];
        let mut read = 0usize;
        for (j, hi) in self.colptr[1..].iter().copied().enumerate() {
            new_colptr[j] = write;
            while read < hi {
                if !self.values[read].is_zero() {
                    self.rowidx[write] = self.rowidx[read];
                    self.values[write] = self.values[read];
                    write += 1;
                }
                read += 1;
            }
        }
        new_colptr[self.ncols] = write;
        self.rowidx.truncate(write);
        self.values.truncate(write);
        self.colptr = new_colptr;
    }

    /// Multiplies every stored value by `s`.
    pub fn scale(&mut self, s: T) {
        self.map_values(|v| v * s);
    }

    /// Sum of all stored values, as `f64`.
    pub fn value_sum(&self) -> f64 {
        self.values.iter().map(|v| v.to_f64()).sum()
    }

    /// Compression factor of adding this collection: `Σ nnz(A_i) / nnz(B)`.
    ///
    /// Helper for experiment reporting (the paper's `cf`, §II-A).
    pub fn compression_factor(inputs: &[&CscMatrix<T>], output: &CscMatrix<T>) -> f64 {
        let inz: usize = inputs.iter().map(|m| m.nnz()).sum();
        if output.nnz() == 0 {
            return 1.0;
        }
        inz as f64 / output.nnz() as f64
    }

    /// `true` when `self` and `other` agree entry-wise within `tol`
    /// (absolute), independent of storage order or explicit zeros.
    pub fn approx_eq(&self, other: &CscMatrix<T>, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.canonicalize();
        b.canonicalize();
        a.prune_tiny(tol);
        b.prune_tiny(tol);
        if a.colptr != b.colptr || a.rowidx != b.rowidx {
            return false;
        }
        a.values
            .iter()
            .zip(&b.values)
            .all(|(x, y)| (x.to_f64() - y.to_f64()).abs() <= tol)
    }

    fn prune_tiny(&mut self, tol: f64) {
        let mut write = 0usize;
        let mut new_colptr = vec![0usize; self.ncols + 1];
        let mut read = 0usize;
        for (j, hi) in self.colptr[1..].iter().copied().enumerate() {
            new_colptr[j] = write;
            while read < hi {
                if self.values[read].to_f64().abs() > tol {
                    self.rowidx[write] = self.rowidx[read];
                    self.values[write] = self.values[read];
                    write += 1;
                }
                read += 1;
            }
        }
        new_colptr[self.ncols] = write;
        self.rowidx.truncate(write);
        self.values.truncate(write);
        self.colptr = new_colptr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CscMatrix<f64> {
        // col 0: (0,1.0),(2,2.0)  col 1: empty  col 2: (1,3.0)
        CscMatrix::try_new(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn try_new_validates() {
        assert!(CscMatrix::<f64>::try_new(3, 3, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::<f64>::try_new(3, 1, vec![1, 1], vec![], vec![]).is_err());
        assert!(
            CscMatrix::<f64>::try_new(3, 1, vec![0, 1], vec![5], vec![1.0]).is_err(),
            "row index out of bounds must be rejected"
        );
        assert!(
            CscMatrix::<f64>::try_new(3, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err()
        );
    }

    #[test]
    fn accessors() {
        let m = small();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(1), 0);
        assert_eq!(m.get(2, 0).unwrap(), 2.0);
        assert_eq!(m.get(1, 0).unwrap(), 0.0);
        assert!(m.get(5, 0).is_err());
        assert_eq!(m.col(0).nnz(), 2);
        assert!(m.col(1).is_empty());
    }

    #[test]
    fn identity_and_zeros() {
        let i = CscMatrix::<f64>::identity(4);
        assert_eq!(i.nnz(), 4);
        for d in 0..4 {
            assert_eq!(i.get(d, d).unwrap(), 1.0);
        }
        let z = CscMatrix::<f64>::zeros(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.shape(), (2, 5));
    }

    #[test]
    fn sortedness_and_sorting() {
        let mut m = CscMatrix::try_new(
            4,
            2,
            vec![0, 3, 4],
            vec![2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        assert!(!m.is_sorted());
        m.sort_columns();
        assert!(m.is_sorted());
        assert_eq!(m.col(0).rows, &[0, 1, 2]);
        assert_eq!(m.col(0).vals, &[2.0, 3.0, 1.0]);
    }

    #[test]
    fn canonicalize_merges_duplicates() {
        let mut m = CscMatrix::try_new(
            4,
            1,
            vec![0, 4],
            vec![2, 0, 2, 0],
            vec![1.0, 2.0, 10.0, 20.0],
        )
        .unwrap();
        m.canonicalize();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0).unwrap(), 22.0);
        assert_eq!(m.get(2, 0).unwrap(), 11.0);
        assert!(m.is_sorted());
    }

    #[test]
    fn prune_zeros_removes_explicit_zeros() {
        let mut m =
            CscMatrix::try_new(3, 2, vec![0, 2, 3], vec![0, 1, 2], vec![0.0, 5.0, 0.0]).unwrap();
        m.prune_zeros();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 0).unwrap(), 5.0);
        assert_eq!(m.col_nnz(1), 0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(0, 2).unwrap(), 2.0);
        assert_eq!(t.get(0, 0).unwrap(), 1.0);
        let tt = t.transpose();
        assert!(tt.approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_sorts_unsorted_input() {
        let m = CscMatrix::try_new(4, 1, vec![0, 3], vec![3, 0, 2], vec![1.0, 2.0, 3.0]).unwrap();
        let tt = m.transpose().transpose();
        assert!(tt.is_sorted());
        assert!(tt.approx_eq(&m, 0.0));
    }

    #[test]
    fn slice_cols_extracts_slab() {
        let m = small();
        let s = m.slice_cols(0, 1);
        assert_eq!(s.shape(), (3, 1));
        assert_eq!(s.nnz(), 2);
        let s2 = m.slice_cols(1, 3);
        assert_eq!(s2.shape(), (3, 2));
        assert_eq!(s2.get(1, 1).unwrap(), 3.0);
    }

    #[test]
    fn slice_rows_rebases_indices() {
        let m = small();
        let s = m.slice_rows(1, 3); // rows 1..3 of 3x3
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.get(1, 0).unwrap(), 2.0, "row 2 becomes row 1");
        assert_eq!(s.get(0, 2).unwrap(), 3.0, "row 1 becomes row 0");
        assert_eq!(s.nnz(), 2);
        // Full-range slice is the identity.
        assert!(m.slice_rows(0, 3).approx_eq(&m, 0.0));
        // Empty slice.
        assert_eq!(m.slice_rows(2, 2).nnz(), 0);
    }

    #[test]
    fn slice_rows_on_unsorted_columns() {
        let m = CscMatrix::try_new(4, 1, vec![0, 3], vec![3, 0, 2], vec![1.0, 2.0, 3.0]).unwrap();
        let s = m.slice_rows(1, 4);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(2, 0).unwrap(), 1.0);
        assert_eq!(s.get(1, 0).unwrap(), 3.0);
    }

    #[test]
    fn col_view_row_range() {
        let m = small();
        let c = m.col(0); // rows [0, 2]
        let r = c.row_range(1, 3);
        assert_eq!(r.rows, &[2]);
        let full = c.row_range(0, 3);
        assert_eq!(full.nnz(), 2);
        let empty = c.row_range(3, 3);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn iter_yields_all_triplets() {
        let m = small();
        let trips: Vec<_> = m.iter().collect();
        assert_eq!(trips, vec![(0, 0, 1.0), (2, 0, 2.0), (1, 2, 3.0)]);
    }

    #[test]
    fn approx_eq_tolerates_order_and_zeros() {
        let a = CscMatrix::try_new(3, 1, vec![0, 2], vec![2, 0], vec![2.0, 1.0]).unwrap();
        let b = CscMatrix::try_new(3, 1, vec![0, 3], vec![0, 2, 1], vec![1.0, 2.0, 0.0]).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
        let c = CscMatrix::try_new(3, 1, vec![0, 1], vec![0], vec![1.5]).unwrap();
        assert!(!a.approx_eq(&c, 1e-12));
    }

    #[test]
    fn scale_and_map() {
        let mut m = small();
        m.scale(2.0);
        assert_eq!(m.get(0, 0).unwrap(), 2.0);
        m.map_values(|v| v - 1.0);
        assert_eq!(m.get(0, 0).unwrap(), 1.0);
    }

    #[test]
    fn vstack_inverts_row_slice() {
        let m = small();
        let top = m.row_slice(0, 1);
        let mid = m.row_slice(1, 2);
        let bot = m.row_slice(2, 3);
        let back = CscMatrix::vstack(&[&top, &mid, &bot]).unwrap();
        assert_eq!(back, m);
        // Uneven two-way split round-trips too.
        let back2 = CscMatrix::vstack(&[&m.row_slice(0, 2), &m.row_slice(2, 3)]).unwrap();
        assert_eq!(back2, m);
    }

    #[test]
    fn row_split_matches_per_range_slices() {
        let m = small();
        for bounds in [vec![0, 3], vec![0, 1, 3], vec![0, 0, 2, 2, 3]] {
            let slabs = m.row_split(&bounds);
            assert_eq!(slabs.len(), bounds.len() - 1);
            for (p, slab) in slabs.iter().enumerate() {
                assert_eq!(
                    slab,
                    &m.row_slice(bounds[p], bounds[p + 1]),
                    "slab {p} of {bounds:?}"
                );
            }
            let refs: Vec<&CscMatrix<f64>> = slabs.iter().collect();
            assert_eq!(CscMatrix::vstack(&refs).unwrap(), m);
        }
    }

    #[test]
    fn row_split_on_unsorted_columns() {
        let m = CscMatrix::try_new(4, 1, vec![0, 3], vec![3, 0, 2], vec![1.0, 2.0, 3.0]).unwrap();
        let slabs = m.row_split(&[0, 2, 4]);
        assert_eq!(slabs[0].nnz(), 1);
        assert_eq!(slabs[0].get(0, 0).unwrap(), 2.0);
        assert_eq!(slabs[1].nnz(), 2);
        assert_eq!(slabs[1].get(1, 0).unwrap(), 1.0, "row 3 rebased to 1");
        assert_eq!(slabs[1].get(0, 0).unwrap(), 3.0, "row 2 rebased to 0");
    }

    #[test]
    #[should_panic(expected = "bounds must run")]
    fn row_split_rejects_bad_bounds() {
        small().row_split(&[0, 2]);
    }

    #[test]
    fn vstack_handles_empty_slabs() {
        let m = small();
        let empty = m.row_slice(1, 1);
        assert_eq!(empty.nrows(), 0);
        let stacked = CscMatrix::vstack(&[&empty, &m, &empty]).unwrap();
        assert_eq!(stacked.shape(), m.shape());
        assert_eq!(stacked, m);
    }

    #[test]
    fn vstack_offsets_row_indices() {
        let a = CscMatrix::<f64>::identity(2);
        let b = CscMatrix::<f64>::identity(2);
        let s = CscMatrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (4, 2));
        assert_eq!(s.get(0, 0).unwrap(), 1.0);
        assert_eq!(s.get(2, 0).unwrap(), 1.0);
        assert_eq!(s.get(3, 1).unwrap(), 1.0);
        assert_eq!(s.nnz(), 4);
    }

    #[test]
    fn vstack_rejects_bad_inputs() {
        let parts: [&CscMatrix<f64>; 0] = [];
        assert!(matches!(
            CscMatrix::vstack(&parts),
            Err(SparseError::EmptyCollection)
        ));
        let a = CscMatrix::<f64>::zeros(2, 3);
        let b = CscMatrix::<f64>::zeros(2, 4);
        assert!(matches!(
            CscMatrix::vstack(&[&a, &b]),
            Err(SparseError::DimensionMismatch { operand: 1, .. })
        ));
    }

    #[test]
    fn compression_factor_reports_ratio() {
        let a = small();
        let b = small();
        let mut sum = small();
        sum.scale(2.0);
        let cf = CscMatrix::compression_factor(&[&a, &b], &sum);
        assert!((cf - 2.0).abs() < 1e-12);
    }
}
