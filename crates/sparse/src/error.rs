//! Error types shared across the sparse substrate.

use std::fmt;

/// Errors produced by sparse-matrix construction, validation, and I/O.
#[derive(Debug)]
pub enum SparseError {
    /// Two operands of an element-wise operation disagree on shape.
    DimensionMismatch {
        /// Shape of the first operand.
        expected: (usize, usize),
        /// Shape of the offending operand.
        found: (usize, usize),
        /// Index of the offending operand in the input collection.
        operand: usize,
    },
    /// Inner dimensions of a product disagree (`A.ncols != B.nrows`).
    ProductMismatch {
        /// Number of columns of the left operand.
        lhs_cols: usize,
        /// Number of rows of the right operand.
        rhs_rows: usize,
    },
    /// An operation over a collection received zero matrices.
    EmptyCollection,
    /// The raw arrays do not form a valid matrix (reason in the payload).
    InvalidStructure(String),
    /// An index exceeds the matrix shape.
    IndexOutOfBounds {
        /// The offending (row, col) pair.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// Underlying I/O failure while reading or writing a matrix file.
    Io(std::io::Error),
    /// A matrix file could not be parsed (reason in the payload).
    Parse(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch {
                expected,
                found,
                operand,
            } => write!(
                f,
                "operand {operand} has shape {}x{}, expected {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            SparseError::ProductMismatch { lhs_cols, rhs_rows } => write!(
                f,
                "product inner dimensions disagree: lhs has {lhs_cols} columns, rhs has {rhs_rows} rows"
            ),
            SparseError::EmptyCollection => write!(f, "operation requires at least one matrix"),
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::Io(e) => write!(f, "I/O error: {e}"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::DimensionMismatch {
            expected: (2, 3),
            found: (4, 5),
            operand: 7,
        };
        let s = e.to_string();
        assert!(s.contains("operand 7"));
        assert!(s.contains("4x5"));
        assert!(s.contains("2x3"));

        let e = SparseError::ProductMismatch {
            lhs_cols: 3,
            rhs_rows: 4,
        };
        assert!(e.to_string().contains("3"));

        let e = SparseError::IndexOutOfBounds {
            index: (9, 9),
            shape: (2, 2),
        };
        assert!(e.to_string().contains("(9, 9)"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: SparseError = io.into();
        assert!(e.source().is_some());
    }
}
