//! A minimal column-major dense matrix.
//!
//! The dense bridge is the test oracle of the suite: every SpKAdd algorithm
//! is checked against `Σ_i dense(A_i)` in the integration tests, so the
//! oracle must be trivially correct and independent of all sparse kernels.

use crate::{CscMatrix, Scalar, SparseError};

/// Column-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T = f64> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// An all-zero `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![T::default(); nrows * ncols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[j * self.nrows + i]
    }

    /// Mutable element at `(i, j)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut T {
        &mut self.data[j * self.nrows + i]
    }

    /// Materializes a sparse matrix densely (duplicates are summed).
    pub fn from_csc(m: &CscMatrix<T>) -> Self {
        let mut d = Self::zeros(m.nrows(), m.ncols());
        for (r, c, v) in m.iter() {
            *d.get_mut(r as usize, c as usize) += v;
        }
        d
    }

    /// Adds another dense matrix in place.
    pub fn add_assign(&mut self, other: &DenseMatrix<T>) -> Result<(), SparseError> {
        if (self.nrows, self.ncols) != (other.nrows, other.ncols) {
            return Err(SparseError::DimensionMismatch {
                expected: (self.nrows, self.ncols),
                found: (other.nrows, other.ncols),
                operand: 1,
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
        Ok(())
    }

    /// Dense matrix product `self · other` (test oracle for SpGEMM).
    pub fn matmul(&self, other: &DenseMatrix<T>) -> Result<DenseMatrix<T>, SparseError> {
        if self.ncols != other.nrows {
            return Err(SparseError::ProductMismatch {
                lhs_cols: self.ncols,
                rhs_rows: other.nrows,
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for j in 0..other.ncols {
            for l in 0..self.ncols {
                let b = other.get(l, j);
                if b.is_zero() {
                    continue;
                }
                for i in 0..self.nrows {
                    *out.get_mut(i, j) += self.get(i, l) * b;
                }
            }
        }
        Ok(out)
    }

    /// Converts to canonical CSC, dropping exact zeros.
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut colptr = Vec::with_capacity(self.ncols + 1);
        colptr.push(0usize);
        let mut rowidx = Vec::new();
        let mut values = Vec::new();
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                let v = self.get(i, j);
                if !v.is_zero() {
                    rowidx.push(i as u32);
                    values.push(v);
                }
            }
            colptr.push(rowidx.len());
        }
        CscMatrix::from_parts(self.nrows, self.ncols, colptr, rowidx, values)
    }

    /// Maximum absolute difference against another dense matrix.
    pub fn max_abs_diff(&self, other: &DenseMatrix<T>) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_csc_and_back() {
        let m =
            CscMatrix::try_new(3, 2, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let d = DenseMatrix::from_csc(&m);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(2, 0), 2.0);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(1, 0), 0.0);
        let back = d.to_csc();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn from_csc_sums_duplicates() {
        let m = CscMatrix::try_new(2, 1, vec![0, 2], vec![0, 0], vec![1.5, 2.5]).unwrap();
        let d = DenseMatrix::from_csc(&m);
        assert_eq!(d.get(0, 0), 4.0);
    }

    #[test]
    fn add_assign_matches_elementwise() {
        let mut a = DenseMatrix::<f64>::zeros(2, 2);
        *a.get_mut(0, 0) = 1.0;
        let mut b = DenseMatrix::<f64>::zeros(2, 2);
        *b.get_mut(0, 0) = 2.0;
        *b.get_mut(1, 1) = 3.0;
        a.add_assign(&b).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 3.0);
        let c = DenseMatrix::<f64>::zeros(3, 2);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let mut a = DenseMatrix::<f64>::zeros(2, 2);
        *a.get_mut(0, 0) = 1.0;
        *a.get_mut(0, 1) = 2.0;
        *a.get_mut(1, 0) = 3.0;
        *a.get_mut(1, 1) = 4.0;
        let mut b = DenseMatrix::<f64>::zeros(2, 2);
        *b.get_mut(0, 0) = 5.0;
        *b.get_mut(0, 1) = 6.0;
        *b.get_mut(1, 0) = 7.0;
        *b.get_mut(1, 1) = 8.0;
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
        assert!(a.matmul(&DenseMatrix::<f64>::zeros(3, 1)).is_err());
    }

    #[test]
    fn max_abs_diff_detects_deviation() {
        let a = DenseMatrix::<f64>::zeros(2, 2);
        let mut b = DenseMatrix::<f64>::zeros(2, 2);
        *b.get_mut(1, 0) = -0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }
}
