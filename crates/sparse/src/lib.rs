//! # spk-sparse — sparse matrix substrate for the SpKAdd suite
//!
//! Containers and conversions for sparse matrices in the three classic
//! storage formats used by the SpKAdd paper and its surrounding systems:
//!
//! * [`CscMatrix`] — compressed sparse column, the format every SpKAdd
//!   algorithm in the paper operates on (columns are added independently);
//! * [`CsrMatrix`] — compressed sparse row, the transpose-dual of CSC;
//! * [`CooMatrix`] — coordinate triplets, the interchange/builder format.
//!
//! Row and column indices are stored as `u32` (the paper's experiments use
//! 32-bit indices: 8-byte hash-table entries for `f32` values, 12-byte for
//! `f64`), which supports matrices with up to 2³²−1 rows — enough for the
//! largest input the paper uses (Metaclust50, 282M rows). Column pointers
//! are `usize` so the total number of nonzeros is not limited to 4 billion.
//!
//! All containers are canonical-form aware: [`CscMatrix::is_sorted`] reports
//! whether every column is sorted by row index with no duplicates, which is
//! exactly the precondition the 2-way and heap SpKAdd algorithms require
//! (Table I of the paper: "need sorted inputs?").

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dcsc;
pub mod dense;
pub mod error;
pub mod io;
pub mod stats;

pub use coo::CooMatrix;
pub use csc::{ColView, CscMatrix};
pub use csr::CsrMatrix;
pub use dcsc::DcscMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use stats::{CollectionStats, DegreeStats};

/// Storage element trait for matrix values.
///
/// The *structural* requirements only: copyable, has a fill value
/// (`Default`), comparable for canonical-form checks, printable, and able
/// to cross thread boundaries. Every container operation (slicing,
/// transposing, sorting, splitting, stacking) and every monoid-generic
/// reduction kernel needs exactly this much — arithmetic lives in the
/// [`Scalar`] subtrait. Notably `bool` is an `Element`, which is what lets
/// the same SpKAdd kernels compute boolean graph unions.
pub trait Element:
    Copy + Default + PartialEq + std::fmt::Debug + std::fmt::Display + Send + Sync + 'static
{
}

impl<T> Element for T where
    T: Copy + Default + PartialEq + std::fmt::Debug + std::fmt::Display + Send + Sync + 'static
{
}

/// Numeric element trait for matrix values.
///
/// Everything the classical (additive) SpKAdd kernels need on top of
/// [`Element`]: an additive identity, `+`/`+=`/`-`/`*`, and numeric
/// bridges. Implemented for the standard float and integer types.
pub trait Scalar:
    Element
    + std::ops::Add<Output = Self>
    + std::ops::AddAssign
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
{
    /// The additive identity, as a `const` (usable in associated consts
    /// of generic impls, unlike `Default::default()`).
    const ZERO: Self;
    /// `true` if the value equals the additive identity.
    #[inline]
    fn is_zero(&self) -> bool {
        *self == Self::default()
    }
    /// The multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion to `f64` for error metrics and dense bridges.
    fn to_f64(&self) -> f64;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0 as $t;
            #[inline]
            fn one() -> Self { 1 as $t }
            #[inline]
            fn to_f64(&self) -> f64 { *self as f64 }
        }
    )*};
}
impl_scalar!(f32, f64, i32, i64, u32, u64, i8, u8, i16, u16);

/// Shape of a matrix: `(rows, cols)`.
pub type Shape = (usize, usize);

/// Checks that all matrices in a collection share one shape.
///
/// This is the first validation step of every k-way SpKAdd entry point.
pub fn common_shape<T: Element>(mats: &[&CscMatrix<T>]) -> Result<Shape, SparseError> {
    let first = mats.first().ok_or(SparseError::EmptyCollection)?;
    let shape = (first.nrows(), first.ncols());
    for (i, m) in mats.iter().enumerate().skip(1) {
        if (m.nrows(), m.ncols()) != shape {
            return Err(SparseError::DimensionMismatch {
                expected: shape,
                found: (m.nrows(), m.ncols()),
                operand: i,
            });
        }
    }
    Ok(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_zero_one() {
        assert!(0.0f64.is_zero());
        assert!(!1.0f64.is_zero());
        assert_eq!(f32::one(), 1.0);
        assert_eq!(i64::one(), 1);
        assert_eq!(3.5f64.to_f64(), 3.5);
    }

    #[test]
    fn common_shape_accepts_uniform() {
        let a = CscMatrix::<f64>::zeros(3, 4);
        let b = CscMatrix::<f64>::zeros(3, 4);
        assert_eq!(common_shape(&[&a, &b]).unwrap(), (3, 4));
    }

    #[test]
    fn common_shape_rejects_mismatch() {
        let a = CscMatrix::<f64>::zeros(3, 4);
        let b = CscMatrix::<f64>::zeros(4, 3);
        let err = common_shape(&[&a, &b]).unwrap_err();
        match err {
            SparseError::DimensionMismatch { operand, .. } => assert_eq!(operand, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn common_shape_rejects_empty() {
        let mats: [&CscMatrix<f64>; 0] = [];
        assert!(matches!(
            common_shape(&mats),
            Err(SparseError::EmptyCollection)
        ));
    }
}
