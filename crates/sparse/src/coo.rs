//! Coordinate (triplet) format — the builder and interchange format.
//!
//! Generators emit COO (R-MAT naturally produces edge triplets, possibly
//! with duplicates), files parse to COO, and COO converts to CSC/CSR by
//! counting sort. Duplicate handling is explicit: [`CooMatrix::to_csc`]
//! keeps duplicates (useful for testing the hash SpKAdd's tolerance of
//! non-canonical inputs) while [`CooMatrix::to_csc_sum_duplicates`] merges
//! them.

use crate::{CscMatrix, Element, Scalar, SparseError};

/// Sparse matrix as a list of `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<T = f64> {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Element> CooMatrix<T> {
    /// An empty `nrows × ncols` triplet list.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self::with_capacity(nrows, ncols, 0)
    }

    /// An empty triplet list with reserved capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Builds from pre-existing triplet arrays, validating bounds.
    pub fn try_from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "triplet arrays disagree in length: {} / {} / {}",
                rows.len(),
                cols.len(),
                vals.len()
            )));
        }
        if let Some(&r) = rows.iter().find(|&&r| r as usize >= nrows) {
            return Err(SparseError::InvalidStructure(format!(
                "row index {r} out of bounds for {nrows} rows"
            )));
        }
        if let Some(&c) = cols.iter().find(|&&c| c as usize >= ncols) {
            return Err(SparseError::InvalidStructure(format!(
                "col index {c} out of bounds for {ncols} cols"
            )));
        }
        Ok(Self {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Appends one entry. Panics in debug builds if out of bounds.
    #[inline]
    pub fn push(&mut self, row: u32, col: u32, val: T) {
        debug_assert!((row as usize) < self.nrows && (col as usize) < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Triplet arrays as parallel slices `(rows, cols, vals)`.
    pub fn triplets(&self) -> (&[u32], &[u32], &[T]) {
        (&self.rows, &self.cols, &self.vals)
    }

    /// Iterates `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((r, c), v)| (*r, *c, *v))
    }

    /// Converts to CSC by counting sort over columns, preserving duplicates
    /// and leaving columns sorted by row index (stable with respect to row).
    pub fn to_csc(&self) -> CscMatrix<T> {
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let colptr = counts.clone();
        let mut rowidx = vec![0u32; nnz];
        let mut values = vec![T::default(); nnz];
        let mut cursor = counts;
        // First pass places entries in column order (row order arbitrary)…
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let dst = cursor[c as usize];
            rowidx[dst] = r;
            values[dst] = v;
            cursor[c as usize] += 1;
        }
        let mut m = CscMatrix::from_parts(self.nrows, self.ncols, colptr, rowidx, values);
        // …then each column is sorted by row (duplicates preserved).
        m.sort_columns();
        m
    }

    /// Merges another triplet list into this one (shapes must match).
    pub fn extend_from(&mut self, other: &CooMatrix<T>) -> Result<(), SparseError> {
        if (other.nrows, other.ncols) != (self.nrows, self.ncols) {
            return Err(SparseError::DimensionMismatch {
                expected: (self.nrows, self.ncols),
                found: (other.nrows, other.ncols),
                operand: 1,
            });
        }
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
        Ok(())
    }
}

impl<T: Scalar> CooMatrix<T> {
    /// Converts to canonical CSC: sorted columns, duplicates summed.
    pub fn to_csc_sum_duplicates(&self) -> CscMatrix<T> {
        let mut m = self.to_csc();
        m.canonicalize();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert() {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(2, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        let m = coo.to_csc();
        assert!(m.is_sorted());
        assert_eq!(m.get(2, 0).unwrap(), 1.0);
        assert_eq!(m.get(0, 0).unwrap(), 2.0);
        assert_eq!(m.get(1, 1).unwrap(), 3.0);
    }

    #[test]
    fn duplicates_preserved_then_summed() {
        let mut coo = CooMatrix::new(2, 1);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        let raw = coo.to_csc();
        assert_eq!(raw.nnz(), 2, "plain conversion keeps duplicates");
        let merged = coo.to_csc_sum_duplicates();
        assert_eq!(merged.nnz(), 1);
        assert_eq!(merged.get(0, 0).unwrap(), 3.0);
    }

    #[test]
    fn try_from_triplets_validates() {
        assert!(CooMatrix::try_from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(CooMatrix::try_from_triplets(2, 2, vec![5], vec![0], vec![1.0]).is_err());
        assert!(CooMatrix::try_from_triplets(2, 2, vec![1], vec![5], vec![1.0]).is_err());
        let ok = CooMatrix::try_from_triplets(2, 2, vec![1], vec![1], vec![1.0]).unwrap();
        assert_eq!(ok.nnz(), 1);
    }

    #[test]
    fn extend_from_checks_shape() {
        let mut a = CooMatrix::<f64>::new(2, 2);
        let b = CooMatrix::<f64>::new(3, 2);
        assert!(a.extend_from(&b).is_err());
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        a.extend_from(&c).unwrap();
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn empty_conversion() {
        let coo = CooMatrix::<f64>::new(4, 4);
        let m = coo.to_csc();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (4, 4));
    }
}
