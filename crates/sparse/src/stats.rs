//! Structural statistics of sparse matrices and collections.
//!
//! The SpKAdd algorithms' relative performance is governed by a handful
//! of structural quantities — per-column density `d`, skew, and the
//! collection's compression factor `cf` (§II-A, §III-A). This module
//! computes them so harnesses and users can report *what* they ran on,
//! and the auto-tuner can reason about inputs.

use crate::{CscMatrix, Scalar};

/// Summary statistics of one matrix's column-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of columns.
    pub ncols: usize,
    /// Total stored entries.
    pub nnz: usize,
    /// Minimum column degree.
    pub min: usize,
    /// Maximum column degree.
    pub max: usize,
    /// Mean column degree.
    pub mean: f64,
    /// Standard deviation of the column degrees.
    pub std_dev: f64,
    /// Fraction of columns with no entries.
    pub empty_fraction: f64,
    /// Gini coefficient of the degree distribution — 0 for perfectly
    /// uniform (ER-like), approaching 1 for extreme skew (RMAT-like).
    pub gini: f64,
}

impl DegreeStats {
    /// Computes column-degree statistics for `m`.
    pub fn of<T: Scalar>(m: &CscMatrix<T>) -> Self {
        let n = m.ncols();
        let mut degrees: Vec<usize> = (0..n).map(|j| m.col_nnz(j)).collect();
        let nnz = m.nnz();
        let min = degrees.iter().copied().min().unwrap_or(0);
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mean = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let var = if n == 0 {
            0.0
        } else {
            degrees
                .iter()
                .map(|&d| (d as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64
        };
        let empty = degrees.iter().filter(|&&d| d == 0).count();
        // Gini via the sorted-rank formula.
        degrees.sort_unstable();
        let gini = if nnz == 0 || n == 0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
                .sum();
            weighted / (n as f64 * nnz as f64)
        };
        Self {
            ncols: n,
            nnz,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
            empty_fraction: if n == 0 { 0.0 } else { empty as f64 / n as f64 },
            gini,
        }
    }
}

/// Summary of a SpKAdd input collection.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats {
    /// Number of matrices.
    pub k: usize,
    /// Shared shape.
    pub shape: (usize, usize),
    /// Total input entries `Σ nnz(A_i)`.
    pub total_nnz: usize,
    /// Entries of the sum `nnz(B)` (pattern union).
    pub output_nnz: usize,
    /// Compression factor `Σ nnz / nnz(B)` (§II-A).
    pub cf: f64,
    /// Mean input entries per output column — the paper's `d·k`.
    pub mean_input_per_col: f64,
    /// Maximum input entries in any single output column (load-balance
    /// hazard indicator, §III-A).
    pub max_input_per_col: usize,
}

impl CollectionStats {
    /// Computes collection statistics (exact union via per-column merge).
    pub fn of<T: Scalar>(mats: &[&CscMatrix<T>]) -> Self {
        assert!(!mats.is_empty(), "collection must be non-empty");
        let shape = (mats[0].nrows(), mats[0].ncols());
        let n = shape.1;
        let total: usize = mats.iter().map(|m| m.nnz()).sum();
        let mut union = 0usize;
        let mut max_in = 0usize;
        let mut rows_buf: Vec<u32> = Vec::new();
        for j in 0..n {
            rows_buf.clear();
            for m in mats {
                rows_buf.extend_from_slice(m.col(j).rows);
            }
            max_in = max_in.max(rows_buf.len());
            rows_buf.sort_unstable();
            rows_buf.dedup();
            union += rows_buf.len();
        }
        Self {
            k: mats.len(),
            shape,
            total_nnz: total,
            output_nnz: union,
            cf: if union == 0 {
                1.0
            } else {
                total as f64 / union as f64
            },
            mean_input_per_col: if n == 0 { 0.0 } else { total as f64 / n as f64 },
            max_input_per_col: max_in,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degrees_have_low_gini() {
        let m = CscMatrix::<f64>::identity(100);
        let s = DegreeStats::of(&m);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.empty_fraction, 0.0);
        assert!(s.gini.abs() < 1e-9);
    }

    #[test]
    fn skewed_degrees_have_high_gini() {
        // One column holds everything.
        let mut colptr = vec![0usize; 101];
        colptr[1..].fill(50);
        let m = CscMatrix::try_new(64, 100, colptr, (0..50).collect(), vec![1.0; 50]).unwrap();
        let s = DegreeStats::of(&m);
        assert_eq!(s.max, 50);
        assert!(s.gini > 0.9, "gini {} should be near 1", s.gini);
        assert!(s.empty_fraction > 0.9);
    }

    #[test]
    fn collection_stats_compute_cf() {
        let a = CscMatrix::<f64>::identity(10);
        let b = CscMatrix::<f64>::identity(10);
        let s = CollectionStats::of(&[&a, &b]);
        assert_eq!(s.k, 2);
        assert_eq!(s.total_nnz, 20);
        assert_eq!(s.output_nnz, 10, "identical patterns fully overlap");
        assert!((s.cf - 2.0).abs() < 1e-12);
        assert_eq!(s.max_input_per_col, 2);
    }

    #[test]
    fn empty_collection_stats() {
        let a = CscMatrix::<f64>::zeros(5, 5);
        let s = CollectionStats::of(&[&a]);
        assert_eq!(s.output_nnz, 0);
        assert_eq!(s.cf, 1.0);
    }
}
