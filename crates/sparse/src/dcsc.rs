//! Doubly compressed sparse column (DCSC) matrices.
//!
//! §II-A of the paper notes that the SpKAdd algorithms apply to "doubly
//! compressed" formats as well. DCSC (Buluç & Gilbert) removes the dense
//! column-pointer array of CSC and stores only the *non-empty* columns:
//! the 2D blocks of a distributed SUMMA become hypersparse (`nnz ≪ n`) as
//! the process count grows, at which point CSC's O(n) column pointer
//! dominates the memory and iteration cost. This container is the
//! substrate's answer for that regime; `to_csc`/`from_csc` bridge to the
//! SpKAdd kernels.

use crate::{CscMatrix, Element, SparseError};

/// Sparse matrix storing only non-empty columns.
///
/// Storage: `jc[i]` is the column index of the `i`-th non-empty column,
/// whose entries occupy `cp[i] .. cp[i+1]` of `rowidx`/`values`.
#[derive(Debug, Clone, PartialEq)]
pub struct DcscMatrix<T = f64> {
    nrows: usize,
    ncols: usize,
    jc: Vec<u32>,
    cp: Vec<usize>,
    rowidx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Element> DcscMatrix<T> {
    /// Builds from raw DCSC arrays, validating the structure.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        jc: Vec<u32>,
        cp: Vec<usize>,
        rowidx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if cp.len() != jc.len() + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "cp length {} != jc length {} + 1",
                cp.len(),
                jc.len()
            )));
        }
        if cp.first() != Some(&0) {
            return Err(SparseError::InvalidStructure("cp[0] must be 0".into()));
        }
        if cp.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SparseError::InvalidStructure(
                "cp must be strictly increasing (DCSC stores no empty columns)".into(),
            ));
        }
        if jc.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SparseError::InvalidStructure(
                "jc must be strictly increasing".into(),
            ));
        }
        if let Some(&c) = jc.last() {
            if c as usize >= ncols {
                return Err(SparseError::InvalidStructure(format!(
                    "column index {c} out of bounds for {ncols} columns"
                )));
            }
        }
        let nnz = *cp.last().unwrap();
        if rowidx.len() != nnz || values.len() != nnz {
            return Err(SparseError::InvalidStructure(format!(
                "array lengths (rowidx {}, values {}) disagree with cp nnz {nnz}",
                rowidx.len(),
                values.len()
            )));
        }
        if let Some(&bad) = rowidx.iter().find(|&&r| r as usize >= nrows) {
            return Err(SparseError::InvalidStructure(format!(
                "row index {bad} out of bounds for {nrows} rows"
            )));
        }
        Ok(Self {
            nrows,
            ncols,
            jc,
            cp,
            rowidx,
            values,
        })
    }

    /// Converts from CSC, dropping the empty-column pointers.
    pub fn from_csc(m: &CscMatrix<T>) -> Self {
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut rowidx = Vec::with_capacity(m.nnz());
        let mut values = Vec::with_capacity(m.nnz());
        for j in 0..m.ncols() {
            let col = m.col(j);
            if col.is_empty() {
                continue;
            }
            jc.push(j as u32);
            rowidx.extend_from_slice(col.rows);
            values.extend_from_slice(col.vals);
            cp.push(rowidx.len());
        }
        Self {
            nrows: m.nrows(),
            ncols: m.ncols(),
            jc,
            cp,
            rowidx,
            values,
        }
    }

    /// Converts to CSC (re-materializing the dense column pointer).
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut colptr = vec![0usize; self.ncols + 1];
        for (i, &j) in self.jc.iter().enumerate() {
            colptr[j as usize + 1] = self.cp[i + 1] - self.cp[i];
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        CscMatrix::from_parts(
            self.nrows,
            self.ncols,
            colptr,
            self.rowidx.clone(),
            self.values.clone(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (logical, including empty ones).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        *self.cp.last().unwrap()
    }

    /// Number of non-empty columns.
    #[inline]
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Looks up column `j`; `None` when the column is empty.
    pub fn col(&self, j: usize) -> Option<(&[u32], &[T])> {
        let i = self.jc.binary_search(&(j as u32)).ok()?;
        let (lo, hi) = (self.cp[i], self.cp[i + 1]);
        Some((&self.rowidx[lo..hi], &self.values[lo..hi]))
    }

    /// Iterates `(col, rows, values)` over non-empty columns.
    pub fn iter_cols(&self) -> impl Iterator<Item = (u32, &[u32], &[T])> + '_ {
        self.jc.iter().enumerate().map(move |(i, &j)| {
            let (lo, hi) = (self.cp[i], self.cp[i + 1]);
            (j, &self.rowidx[lo..hi], &self.values[lo..hi])
        })
    }

    /// Heap bytes used by the index structure (excluding values) — the
    /// quantity DCSC shrinks for hypersparse matrices.
    pub fn index_bytes(&self) -> usize {
        self.jc.len() * 4 + self.cp.len() * 8 + self.rowidx.len() * 4
    }

    /// The corresponding CSC index cost: `(ncols + 1)` pointers plus row
    /// indices.
    pub fn csc_index_bytes(&self) -> usize {
        (self.ncols + 1) * 8 + self.rowidx.len() * 4
    }

    /// `true` when the matrix is hypersparse (`nnz < ncols`), the regime
    /// DCSC exists for.
    pub fn is_hypersparse(&self) -> bool {
        self.nnz() < self.ncols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hypersparse() -> CscMatrix<f64> {
        // 3 entries spread over 1000 columns.
        let mut colptr = vec![0usize; 1001];
        for j in 0..1000 {
            colptr[j + 1] = colptr[j]
                + match j {
                    7 | 400 | 999 => 1,
                    _ => 0,
                };
        }
        CscMatrix::try_new(100, 1000, colptr, vec![5, 50, 99], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn round_trip_preserves_matrix() {
        let m = hypersparse();
        let d = DcscMatrix::from_csc(&m);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.nzc(), 3);
        assert!(d.is_hypersparse());
        assert!(d.to_csc().approx_eq(&m, 0.0));
    }

    #[test]
    fn column_lookup() {
        let d = DcscMatrix::from_csc(&hypersparse());
        let (rows, vals) = d.col(400).unwrap();
        assert_eq!(rows, &[50]);
        assert_eq!(vals, &[2.0]);
        assert!(d.col(3).is_none(), "empty column lookup");
        assert!(d.col(999).is_some());
    }

    #[test]
    fn iter_cols_visits_only_nonempty() {
        let d = DcscMatrix::from_csc(&hypersparse());
        let cols: Vec<u32> = d.iter_cols().map(|(j, _, _)| j).collect();
        assert_eq!(cols, vec![7, 400, 999]);
    }

    #[test]
    fn hypersparse_index_is_smaller_than_csc() {
        let d = DcscMatrix::from_csc(&hypersparse());
        assert!(
            d.index_bytes() * 10 < d.csc_index_bytes(),
            "DCSC index {} should be well under CSC's {}",
            d.index_bytes(),
            d.csc_index_bytes()
        );
    }

    #[test]
    fn validation_rejects_bad_structure() {
        // cp not strictly increasing (an empty stored column).
        assert!(DcscMatrix::<f64>::try_new(4, 4, vec![1], vec![0, 0], vec![], vec![]).is_err());
        // jc out of order.
        assert!(DcscMatrix::<f64>::try_new(
            4,
            4,
            vec![2, 1],
            vec![0, 1, 2],
            vec![0, 0],
            vec![1.0, 1.0]
        )
        .is_err());
        // column index out of range.
        assert!(DcscMatrix::<f64>::try_new(4, 4, vec![9], vec![0, 1], vec![0], vec![1.0]).is_err());
        // row index out of range.
        assert!(DcscMatrix::<f64>::try_new(4, 4, vec![1], vec![0, 1], vec![9], vec![1.0]).is_err());
        // valid minimal case.
        assert!(DcscMatrix::<f64>::try_new(4, 4, vec![1], vec![0, 1], vec![2], vec![1.0]).is_ok());
    }

    #[test]
    fn dense_matrix_round_trips_too() {
        let m = CscMatrix::<f64>::identity(8);
        let d = DcscMatrix::from_csc(&m);
        assert_eq!(d.nzc(), 8);
        assert!(!d.is_hypersparse());
        assert!(d.to_csc().approx_eq(&m, 0.0));
    }
}
