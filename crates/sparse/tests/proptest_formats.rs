//! Property tests for the sparse containers: conversions are lossless,
//! canonicalization is idempotent, slicing composes, and the Matrix
//! Market codec round-trips.

use proptest::prelude::*;
use spk_sparse::{io, CooMatrix, CscMatrix, DenseMatrix};

/// Strategy: a random matrix built from triplets (duplicates summed).
fn matrix_strategy() -> impl Strategy<Value = CscMatrix<f64>> {
    (1usize..32, 1usize..16).prop_flat_map(|(m, n)| {
        let entry = (0..m as u32, 0..n as u32, -16i32..16);
        proptest::collection::vec(entry, 0..64).prop_map(move |trips| {
            let mut coo = CooMatrix::new(m, n);
            for (r, c, v) in trips {
                coo.push(r, c, v as f64);
            }
            coo.to_csc_sum_duplicates()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_is_an_involution(m in matrix_strategy()) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_swaps_entries(m in matrix_strategy()) {
        let t = m.transpose();
        prop_assert_eq!(t.shape(), (m.ncols(), m.nrows()));
        for (r, c, v) in m.iter() {
            prop_assert_eq!(t.get(c as usize, r as usize).unwrap(), v);
        }
    }

    #[test]
    fn canonicalize_is_idempotent(m in matrix_strategy()) {
        let mut once = m.clone();
        once.canonicalize();
        let mut twice = once.clone();
        twice.canonicalize();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.is_sorted());
    }

    #[test]
    fn csr_round_trip_is_lossless(m in matrix_strategy()) {
        prop_assert!(m.to_csr().to_csc().approx_eq(&m, 0.0));
    }

    #[test]
    fn coo_round_trip_is_lossless(m in matrix_strategy()) {
        prop_assert!(m.to_coo().to_csc_sum_duplicates().approx_eq(&m, 0.0));
    }

    #[test]
    fn dense_round_trip_drops_only_zeros(m in matrix_strategy()) {
        let mut pruned = m.clone();
        pruned.prune_zeros();
        prop_assert!(DenseMatrix::from_csc(&m).to_csc().approx_eq(&pruned, 0.0));
    }

    #[test]
    fn column_slices_tile_the_matrix(m in matrix_strategy()) {
        let n = m.ncols();
        let cut = n / 2;
        let left = m.slice_cols(0, cut);
        let right = m.slice_cols(cut, n);
        prop_assert_eq!(left.nnz() + right.nnz(), m.nnz());
        for j in 0..cut {
            prop_assert_eq!(left.col_nnz(j), m.col_nnz(j));
        }
        for j in cut..n {
            prop_assert_eq!(right.col_nnz(j - cut), m.col_nnz(j));
        }
    }

    #[test]
    fn row_slices_partition_entries(m in matrix_strategy()) {
        let rows = m.nrows();
        let cut = rows / 2;
        let top = m.slice_rows(0, cut);
        let bottom = m.slice_rows(cut, rows);
        prop_assert_eq!(top.nnz() + bottom.nnz(), m.nnz());
        for (r, c, v) in top.iter() {
            prop_assert_eq!(m.get(r as usize, c as usize).unwrap(), v);
        }
        for (r, c, v) in bottom.iter() {
            prop_assert_eq!(m.get(r as usize + cut, c as usize).unwrap(), v);
        }
    }

    #[test]
    fn matrix_market_round_trip(m in matrix_strategy()) {
        let mut buf = Vec::new();
        io::write_matrix_market_to(&mut buf, &m).unwrap();
        let back = io::read_matrix_market_from(&buf[..]).unwrap().to_csc_sum_duplicates();
        prop_assert!(back.approx_eq(&m, 1e-9));
    }

    #[test]
    fn sort_columns_preserves_multiset(m in matrix_strategy()) {
        // Destroy order, then sort; per-column entry multisets must match.
        let (rows_n, cols_n, colptr, mut ridx, mut vals) = m.clone().into_parts();
        for j in 0..cols_n {
            ridx[colptr[j]..colptr[j + 1]].reverse();
            vals[colptr[j]..colptr[j + 1]].reverse();
        }
        let mut shuffled = CscMatrix::try_new(rows_n, cols_n, colptr, ridx, vals).unwrap();
        shuffled.sort_columns();
        prop_assert!(shuffled.is_sorted_with_duplicates());
        prop_assert!(shuffled.approx_eq(&m, 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `row_slice` along any contiguous partition, then `vstack`, is the
    /// identity — the invariant the sharded aggregation service rests on.
    #[test]
    fn row_slice_vstack_round_trips(
        m in matrix_strategy(),
        shards in 1usize..6,
    ) {
        let rows = m.nrows();
        let slabs: Vec<CscMatrix<f64>> = (0..shards)
            .map(|s| m.row_slice(s * rows / shards, (s + 1) * rows / shards))
            .collect();
        let refs: Vec<&CscMatrix<f64>> = slabs.iter().collect();
        let back = CscMatrix::vstack(&refs).unwrap();
        prop_assert_eq!(&back, &m, "vstack ∘ row_slice must be the identity");
    }

    /// Stacking preserves per-column entry counts and shifts row indices
    /// by the height of everything stacked above.
    #[test]
    fn vstack_offsets_and_counts(a in matrix_strategy(), b in matrix_strategy()) {
        // Give b the same column count as a by slicing the wider one.
        let n = a.ncols().min(b.ncols());
        let a = a.slice_cols(0, n);
        let b = b.slice_cols(0, n);
        let s = CscMatrix::vstack(&[&a, &b]).unwrap();
        prop_assert_eq!(s.shape(), (a.nrows() + b.nrows(), n));
        prop_assert_eq!(s.nnz(), a.nnz() + b.nnz());
        for j in 0..n {
            prop_assert_eq!(s.col_nnz(j), a.col_nnz(j) + b.col_nnz(j));
        }
        for (r, c, v) in b.iter() {
            prop_assert_eq!(s.get(r as usize + a.nrows(), c as usize).unwrap(), v);
        }
    }

    /// The one-pass multi-way split produces exactly the slabs the
    /// per-range `row_slice` calls would.
    #[test]
    fn row_split_agrees_with_row_slice(
        m in matrix_strategy(),
        shards in 1usize..6,
    ) {
        let rows = m.nrows();
        let bounds: Vec<usize> = (0..=shards).map(|s| s * rows / shards).collect();
        let slabs = m.row_split(&bounds);
        prop_assert_eq!(slabs.len(), shards);
        for (p, slab) in slabs.iter().enumerate() {
            prop_assert_eq!(slab, &m.row_slice(bounds[p], bounds[p + 1]));
        }
    }
}
