//! # spkadd-suite — facade crate
//!
//! Re-exports the whole SpKAdd reproduction workspace behind one dependency:
//!
//! * [`sparse`] — CSC/CSR/COO containers and I/O ([`spk_sparse`]);
//! * [`kadd`] — the SpKAdd algorithms themselves ([`spkadd`]);
//! * [`gen`] — deterministic workload generators ([`spk_gen`]);
//! * [`spgemm`] — local sparse matrix-matrix multiply ([`spk_spgemm`]);
//! * [`summa`] — the simulated distributed sparse SUMMA pipeline
//!   ([`spk_summa`]);
//! * [`cachesim`] — the trace-driven cache simulator ([`spk_cachesim`]);
//! * [`server`] — the sharded, concurrent SpKAdd aggregation service
//!   ([`spk_server`]).
//!
//! See `examples/quickstart.rs` for a three-minute tour and DESIGN.md for
//! the map from paper sections to modules.

pub use spk_cachesim as cachesim;
pub use spk_gen as gen;
pub use spk_server as server;
pub use spk_sparse as sparse;
pub use spk_spgemm as spgemm;
pub use spk_summa as summa;
pub use spkadd as kadd;

/// The most common entry point, re-exported at the top level: add a
/// collection of CSC matrices with an explicitly chosen algorithm.
pub use spkadd::{spkadd_with, Algorithm, Options};

/// One-call "do the right thing" API: picks the algorithm with the paper's
/// Fig 2 heuristics and runs it.
pub use spkadd::spkadd_auto;
