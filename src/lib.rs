//! # spkadd-suite — facade crate
//!
//! Re-exports the whole SpKAdd reproduction workspace behind one dependency:
//!
//! * [`sparse`] — CSC/CSR/COO containers and I/O ([`spk_sparse`]);
//! * [`kadd`] — the SpKAdd algorithms themselves ([`spkadd`]);
//! * [`gen`] — deterministic workload generators ([`spk_gen`]);
//! * [`spgemm`] — local sparse matrix-matrix multiply ([`spk_spgemm`]);
//! * [`summa`] — the simulated distributed sparse SUMMA pipeline
//!   ([`spk_summa`]);
//! * [`cachesim`] — the trace-driven cache simulator ([`spk_cachesim`]);
//! * [`server`] — the sharded, concurrent SpKAdd aggregation service
//!   ([`spk_server`]);
//! * [`obs`] — span tracing, metrics registry, and machine-readable run
//!   reports ([`spk_obs`]).
//!
//! See `examples/quickstart.rs` for a three-minute tour and DESIGN.md for
//! the map from paper sections to modules.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

pub use spk_cachesim as cachesim;
pub use spk_gen as gen;
pub use spk_obs as obs;
pub use spk_server as server;
pub use spk_sparse as sparse;
pub use spk_spgemm as spgemm;
pub use spk_summa as summa;
pub use spkadd as kadd;

/// The front door, re-exported at the top level: build a reusable
/// execution plan once ([`SpkAdd`] → [`SpkAddPlan`]), execute it over as
/// many collections as you like — workspaces are retained across calls.
pub use spkadd::{SpkAdd, SpkAddPlan};

/// One-shot compatibility shims over a throwaway plan: add a collection
/// with an explicitly chosen algorithm ([`Algorithm::Auto`] picks with
/// the paper's Fig 2 heuristics).
pub use spkadd::{spkadd_auto, spkadd_with, Algorithm, Options};

/// Per-execution instrumentation: phase timings plus the pattern-cache
/// outcome ([`PatternOutcome::Hit`] means the symbolic phase was skipped
/// entirely and the cached output structure was reused).
pub use spkadd::{ExecuteStats, PatternCacheStats, PatternOutcome};

/// Monoid-generic reduction: the same SpKAdd machinery folding under
/// any associative combine — `Or` for structural unions, `Min`/
/// [`MaxPlus`] for tropical semirings, [`ThresholdedPlus`] for filtered
/// merges. [`spkadd_with`] is [`spkadd_with_monoid`] with [`Plus`].
pub use spkadd::{
    spkadd_with_monoid, MaxPlus, Min, Monoid, Or, Plus, SaturatingCount, ThresholdedPlus,
};
