//! `spkadd-cli` — add a collection of Matrix Market files from the shell.
//!
//! ```text
//! # add three matrices with the hash algorithm and write the sum:
//! spkadd-cli add --algorithm hash --out sum.mtx a.mtx b.mtx c.mtx
//!
//! # inspect a collection without adding it:
//! spkadd-cli stats a.mtx b.mtx c.mtx
//!
//! # generate a test collection (ER or RMAT splits) into a directory:
//! spkadd-cli gen --pattern rmat --rows 65536 --cols 64 --d 32 --k 8 --out-dir /tmp/mats
//! ```

use spkadd_suite::gen::{generate_collection, Pattern};
use spkadd_suite::kadd::{spkadd_with, Algorithm, Options};
use spkadd_suite::sparse::{io, CollectionStats, CscMatrix, DegreeStats};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "add" => cmd_add(rest),
        "stats" => cmd_stats(rest),
        "gen" => cmd_gen(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
spkadd-cli — SpKAdd over Matrix Market files

USAGE:
  spkadd-cli add  [--algorithm NAME] [--out FILE] [--unsorted] FILES...
  spkadd-cli stats FILES...
  spkadd-cli gen  [--pattern er|rmat] [--rows R] [--cols C] [--d D] [--k K]
                  [--seed S] --out-dir DIR

Algorithms: hash (default), sliding-hash, spa, sliding-spa, heap,
            2way-tree, 2way-incremental, auto";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

fn positional(args: &[String]) -> Vec<&String> {
    // Everything not part of a --flag pair and not a bare flag.
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Flags with values; bare flags are enumerated explicitly.
            skip = !matches!(a.as_str(), "--unsorted");
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

fn parse_algorithm(name: &str) -> Result<Option<Algorithm>, String> {
    Ok(Some(match name {
        "hash" => Algorithm::Hash,
        "sliding-hash" => Algorithm::SlidingHash,
        "spa" => Algorithm::Spa,
        "sliding-spa" => Algorithm::SlidingSpa,
        "heap" => Algorithm::Heap,
        "2way-tree" => Algorithm::TwoWayTree,
        "2way-incremental" => Algorithm::TwoWayIncremental,
        "auto" => return Ok(None),
        other => return Err(format!("unknown algorithm '{other}'")),
    }))
}

fn load_all(paths: &[&String]) -> Result<Vec<CscMatrix<f64>>, String> {
    if paths.is_empty() {
        return Err("no input files given".into());
    }
    paths
        .iter()
        .map(|p| {
            io::read_matrix_market(p)
                .map(|coo| coo.to_csc_sum_duplicates())
                .map_err(|e| format!("{p}: {e}"))
        })
        .collect()
}

fn cmd_add(args: &[String]) -> Result<(), String> {
    let alg = parse_algorithm(flag_value(args, "--algorithm").unwrap_or("hash"))?;
    let out = flag_value(args, "--out");
    let unsorted = args.iter().any(|a| a == "--unsorted");
    let mats = load_all(&positional(args))?;
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();

    let mut opts = Options::default();
    opts.sorted_output = !unsorted;
    let t0 = std::time::Instant::now();
    let sum = match alg {
        Some(a) => spkadd_with(&refs, a, &opts),
        None => spkadd_suite::spkadd_auto(&refs, &opts),
    }
    .map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();

    let total: usize = mats.iter().map(|m| m.nnz()).sum();
    eprintln!(
        "added k={} matrices ({}x{}, {} input nnz) in {:.3} ms → {} output nnz (cf {:.2})",
        mats.len(),
        sum.nrows(),
        sum.ncols(),
        total,
        secs * 1e3,
        sum.nnz(),
        total as f64 / sum.nnz().max(1) as f64
    );
    match out {
        Some(path) => io::write_matrix_market(path, &sum).map_err(|e| e.to_string())?,
        None => io::write_matrix_market_to(std::io::stdout().lock(), &sum)
            .map_err(|e| e.to_string())?,
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mats = load_all(&positional(args))?;
    for (i, m) in mats.iter().enumerate() {
        let d = DegreeStats::of(m);
        println!(
            "matrix {i}: {}x{}, nnz {}, col degree min/mean/max = {}/{:.1}/{}, \
             gini {:.3}, empty cols {:.1}%",
            m.nrows(),
            m.ncols(),
            d.nnz,
            d.min,
            d.mean,
            d.max,
            d.gini,
            d.empty_fraction * 100.0
        );
    }
    if mats.len() > 1 {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let c = CollectionStats::of(&refs);
        println!(
            "collection: k={}, total nnz {}, output nnz {}, cf {:.2}, \
             max input entries in one column {}",
            c.k, c.total_nnz, c.output_nnz, c.cf, c.max_input_per_col
        );
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let pattern = match flag_value(args, "--pattern").unwrap_or("er") {
        "er" => Pattern::Er,
        "rmat" => Pattern::Rmat,
        other => return Err(format!("unknown pattern '{other}'")),
    };
    let rows: usize = flag_value(args, "--rows").unwrap_or("65536").parse().unwrap_or(65536);
    let cols: usize = flag_value(args, "--cols").unwrap_or("64").parse().unwrap_or(64);
    let d: usize = flag_value(args, "--d").unwrap_or("16").parse().unwrap_or(16);
    let k: usize = flag_value(args, "--k").unwrap_or("4").parse().unwrap_or(4);
    let seed: u64 = flag_value(args, "--seed").unwrap_or("42").parse().unwrap_or(42);
    let dir = flag_value(args, "--out-dir").ok_or("missing --out-dir")?;
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mats = generate_collection(pattern, rows, cols, d, k, seed);
    for (i, m) in mats.iter().enumerate() {
        let path = format!("{dir}/mat_{i:03}.mtx");
        io::write_matrix_market(&path, m).map_err(|e| e.to_string())?;
        eprintln!("wrote {path} ({} nnz)", m.nnz());
    }
    Ok(())
}
