//! `spkadd-cli` — add a collection of Matrix Market files from the shell.
//!
//! ```text
//! # add three matrices with the hash algorithm and write the sum:
//! spkadd-cli add --algorithm hash --out sum.mtx a.mtx b.mtx c.mtx
//!
//! # inspect a collection without adding it:
//! spkadd-cli stats a.mtx b.mtx c.mtx
//!
//! # generate a test collection (ER or RMAT splits) into a directory:
//! spkadd-cli gen --pattern rmat --rows 65536 --cols 64 --d 32 --k 8 --out-dir /tmp/mats
//!
//! # drive the sharded aggregation service with a synthetic stream:
//! spkadd-cli serve-demo --shards 4 --keys 2 --matrices 64
//!
//! # lint the workspace's repo invariants (what CI's spk-lint enforces):
//! spkadd-cli check
//! ```

use spkadd_suite::gen::{generate_collection, Pattern};
use spkadd_suite::kadd::{Algorithm, SpkAdd};
use spkadd_suite::server::{AggregatorService, ServerError, ServiceConfig};
use spkadd_suite::sparse::{common_shape, io, CollectionStats, CscMatrix, DegreeStats};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "add" => cmd_add(rest),
        "stats" => cmd_stats(rest),
        "gen" => cmd_gen(rest),
        "serve-demo" => cmd_serve_demo(rest),
        "check" => cmd_check(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
spkadd-cli — SpKAdd over Matrix Market files

USAGE:
  spkadd-cli add  [--algorithm NAME] [--out FILE] [--unsorted]
                  [--no-adaptive] [--pattern-cache N] [--repeat N]
                  [--trace-json FILE] FILES...
  spkadd-cli stats FILES...
  spkadd-cli gen  [--pattern er|rmat] [--rows R] [--cols C] [--d D] [--k K]
                  [--seed S] --out-dir DIR
  spkadd-cli serve-demo [--shards S] [--keys K] [--matrices N] [--rows R]
                  [--cols C] [--d D] [--pattern er|rmat] [--producers P]
                  [--algorithm NAME] [--seed S] [--metrics-json FILE]
  spkadd-cli check [--root DIR]
                  run the spk-lint repo invariants (SAFETY comments,
                  sanctioned clock, no-unwrap in spk_server, shim parity,
                  bench schema) and report file:line diagnostics

Observability:
  --trace-json FILE    enable span tracing for the run, print the span
                       tree to stderr, write the spk_obs.trace.v1 JSON
  --metrics-json FILE  write the service metrics as a
                       spk_obs.run_report.v1 JSON report

Algorithms: hash (default), sliding-hash, spa, sliding-spa, heap,
            2way-tree, 2way-incremental, lib-tree, lib-incremental, auto
            ('auto' picks per collection — per flushed batch under
            serve-demo — with the paper's Fig 2 decision surface, then
            re-scores every column chunk; --no-adaptive pins the
            collection-level choice for all chunks)";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

fn positional(args: &[String]) -> Vec<&String> {
    // Everything not part of a --flag pair and not a bare flag.
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Flags with values; bare flags are enumerated explicitly.
            skip = !matches!(a.as_str(), "--unsorted" | "--no-adaptive");
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

fn load_all(paths: &[&String]) -> Result<Vec<CscMatrix<f64>>, String> {
    if paths.is_empty() {
        return Err("no input files given".into());
    }
    paths
        .iter()
        .map(|p| {
            io::read_matrix_market(p)
                .map(|coo| coo.to_csc_sum_duplicates())
                .map_err(|e| format!("{p}: {e}"))
        })
        .collect()
}

/// Renders one execution's phase split without ambiguity: a skipped
/// symbolic phase says so instead of printing a misleading `0.000 ms`.
fn phase_summary(stats: &spkadd_suite::ExecuteStats) -> String {
    use spkadd_suite::PatternOutcome;
    let numeric = format!("numeric {:.3} ms", stats.numeric * 1e3);
    match stats.pattern {
        PatternOutcome::Hit => format!(
            "symbolic skipped — pattern cache hit, fingerprint {:.3} ms, {numeric}",
            stats.fingerprint * 1e3
        ),
        PatternOutcome::Miss => format!(
            "symbolic {:.3} ms, fingerprint {:.3} ms, {numeric}",
            stats.symbolic * 1e3,
            stats.fingerprint * 1e3
        ),
        PatternOutcome::Disabled | PatternOutcome::Bypassed => {
            format!("symbolic {:.3} ms, {numeric}", stats.symbolic * 1e3)
        }
    }
}

fn cmd_add(args: &[String]) -> Result<(), String> {
    let alg: Algorithm = flag_value(args, "--algorithm")
        .unwrap_or("hash")
        .parse()
        .map_err(|e: spkadd_suite::kadd::SpkaddError| e.to_string())?;
    let out = flag_value(args, "--out");
    let unsorted = args.iter().any(|a| a == "--unsorted");
    let no_adaptive = args.iter().any(|a| a == "--no-adaptive");
    let cache_cap: usize = parsed_flag(args, "--pattern-cache", 0)?;
    let repeat: usize = parsed_flag(args, "--repeat", 1)?.max(1);
    let trace_json = flag_value(args, "--trace-json");
    if trace_json.is_some() {
        spkadd_suite::obs::set_tracing(true);
    }
    let mats = load_all(&positional(args))?;
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let (nrows, ncols) = common_shape(&refs).map_err(|e| e.to_string())?;

    let mut plan = SpkAdd::new(nrows, ncols)
        .algorithm(alg)
        .adaptive(!no_adaptive)
        .sorted_output(!unsorted)
        .pattern_cache(cache_cap)
        .build()
        .map_err(|e| e.to_string())?;
    let t0 = spk_obs::now();
    let mut sum = CscMatrix::zeros(nrows, ncols);
    let mut stats = spkadd_suite::ExecuteStats::default();
    for pass in 0..repeat {
        let t = spk_obs::now();
        stats = plan
            .execute_into_timed(&refs, &mut sum)
            .map_err(|e| e.to_string())?;
        if repeat > 1 {
            eprintln!(
                "pass {pass}: {:.3} ms ({})",
                t.elapsed().as_secs_f64() * 1e3,
                phase_summary(&stats)
            );
        }
    }
    let secs = t0.elapsed().as_secs_f64();

    let total: usize = mats.iter().map(|m| m.nnz()).sum();
    eprintln!(
        "added k={} matrices ({}x{}, {} input nnz) in {:.3} ms ({}) → {} output nnz (cf {:.2})",
        mats.len(),
        sum.nrows(),
        sum.ncols(),
        total,
        secs * 1e3,
        phase_summary(&stats),
        sum.nnz(),
        total as f64 / sum.nnz().max(1) as f64
    );
    if alg == Algorithm::Auto {
        eprintln!("kernels: {}", stats.kernel_counts);
    }
    if let Some(path) = trace_json {
        let spans = spkadd_suite::obs::take_spans();
        let dropped = spkadd_suite::obs::dropped_spans();
        let doc = spkadd_suite::obs::trace_json(&spans, dropped);
        std::fs::write(path, doc.to_string_pretty()).map_err(|e| format!("{path}: {e}"))?;
        eprint!("{}", spkadd_suite::obs::render_span_tree(&spans));
        eprintln!("trace: {} spans ({dropped} dropped) → {path}", spans.len());
    }
    match out {
        Some(path) => io::write_matrix_market(path, &sum).map_err(|e| e.to_string())?,
        None => {
            io::write_matrix_market_to(std::io::stdout().lock(), &sum).map_err(|e| e.to_string())?
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mats = load_all(&positional(args))?;
    for (i, m) in mats.iter().enumerate() {
        let d = DegreeStats::of(m);
        println!(
            "matrix {i}: {}x{}, nnz {}, col degree min/mean/max = {}/{:.1}/{}, \
             gini {:.3}, empty cols {:.1}%",
            m.nrows(),
            m.ncols(),
            d.nnz,
            d.min,
            d.mean,
            d.max,
            d.gini,
            d.empty_fraction * 100.0
        );
    }
    if mats.len() > 1 {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let c = CollectionStats::of(&refs);
        println!(
            "collection: k={}, total nnz {}, output nnz {}, cf {:.2}, \
             max input entries in one column {}",
            c.k, c.total_nnz, c.output_nnz, c.cf, c.max_input_per_col
        );
    }
    Ok(())
}

/// Runs the repo-invariant lint (the same engine as the `spk-lint` CI
/// binary) and prints one `file:line: [rule]` diagnostic per finding,
/// so a violation is clickable in an editor and names the invariant it
/// broke.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let root = flag_value(args, "--root").unwrap_or(".");
    let root_path = std::path::Path::new(root);
    if !root_path.join("Cargo.toml").is_file() {
        return Err(format!(
            "'{root}' does not look like a workspace root (no Cargo.toml); \
             pass --root DIR"
        ));
    }
    let report = spk_check::lint::run(root_path).map_err(|e| format!("{root}: {e}"))?;
    if report.clean() {
        println!(
            "check: clean — {} files scanned, invariants: {}",
            report.files_scanned,
            spk_check::lint::RULES.join(", ")
        );
        return Ok(());
    }
    for v in &report.violations {
        println!("{v}");
    }
    Err(format!(
        "{} invariant violation(s) across {} scanned files — each line \
         above is file:line: [invariant] detail",
        report.violations.len(),
        report.files_scanned
    ))
}

/// Parses `--name` as a `T`, defaulting when absent but *rejecting*
/// unparseable values — a typo'd number must not silently fall back to
/// the default and measure a different workload than requested.
fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for {name}")),
    }
}

fn cmd_serve_demo(args: &[String]) -> Result<(), String> {
    let shards: usize = parsed_flag(args, "--shards", 0)?;
    let keys: usize = parsed_flag(args, "--keys", 2)?.max(1);
    let matrices: usize = parsed_flag(args, "--matrices", 32)?.max(1);
    let rows: usize = parsed_flag(args, "--rows", 16384)?;
    let cols: usize = parsed_flag(args, "--cols", 64)?;
    let d: usize = parsed_flag(args, "--d", 8)?;
    let producers: usize = parsed_flag(args, "--producers", 4)?.max(1);
    let seed: u64 = parsed_flag(args, "--seed", 42)?;
    let pattern = match flag_value(args, "--pattern").unwrap_or("er") {
        "er" => Pattern::Er,
        "rmat" => Pattern::Rmat,
        other => return Err(format!("unknown pattern '{other}'")),
    };
    // Any algorithm works here, `auto` included: the shards' retained
    // plans resolve it per flushed batch.
    let algorithm: Algorithm = flag_value(args, "--algorithm")
        .unwrap_or("hash")
        .parse()
        .map_err(|e: spkadd_suite::kadd::SpkaddError| e.to_string())?;

    eprintln!(
        "generating a stream of {matrices} {rows}x{cols} matrices (~{d} nnz/col, {:?})...",
        pattern
    );
    let mats = generate_collection(pattern, rows, cols, d, matrices, seed);

    let svc: AggregatorService<f64> = AggregatorService::new(
        rows,
        cols,
        ServiceConfig::with_shards(shards).with_algorithm(algorithm),
    );
    let nshards = svc.plan().nshards();
    eprintln!(
        "service up: {nshards} shards, {producers} producers, {keys} keys, algorithm {algorithm}"
    );

    let t0 = spk_obs::now();
    std::thread::scope(|scope| {
        for (p, chunk) in mats.chunks(matrices.div_ceil(producers)).enumerate() {
            let svc = &svc;
            scope.spawn(move || {
                for (i, m) in chunk.iter().enumerate() {
                    // Round-robin the stream over the aggregation keys.
                    let key = format!("job-{}", (p + i) % keys);
                    svc.submit(&key, m).expect("submit failed");
                }
            });
        }
    });
    let submit_secs = t0.elapsed().as_secs_f64();

    let mut output_nnz = 0usize;
    for k in 0..keys {
        let key = format!("job-{k}");
        match svc.finalize(&key) {
            Ok(sum) => {
                output_nnz += sum.nnz();
                println!("{key}: {} nnz aggregated", sum.nnz());
            }
            // Expected when the stream has fewer matrices than keys.
            Err(ServerError::UnknownKey(_)) => {
                println!("{key}: no submissions were routed to this key")
            }
            Err(e) => return Err(format!("{key}: {e}")),
        }
    }
    let total_secs = t0.elapsed().as_secs_f64();

    let m = svc.metrics();
    println!(
        "submitted {} matrices in {:.1} ms ({:.0} matrices/s); finalize total {:.1} ms",
        m.submitted,
        submit_secs * 1e3,
        m.submitted as f64 / submit_secs.max(1e-9),
        total_secs * 1e3
    );
    println!(
        "routed {} slices, flushed {} batches, {} output nnz across {keys} keys",
        m.slices_routed(),
        m.batches_flushed(),
        output_nnz
    );
    let kernels = m.kernel_counts();
    if !kernels.is_empty() {
        println!("kernels: {kernels}");
    }
    for s in &m.shards {
        println!(
            "  shard rows {:>7}..{:<7} | {:>5} slices | {:>4} flushes",
            s.rows.start, s.rows.end, s.slices, s.batches_flushed
        );
    }
    if let Some(path) = flag_value(args, "--metrics-json") {
        let report = m.to_report();
        report
            .write_json_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
        eprint!("{}", report.human_table());
        eprintln!("metrics report → {path}");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let pattern = match flag_value(args, "--pattern").unwrap_or("er") {
        "er" => Pattern::Er,
        "rmat" => Pattern::Rmat,
        other => return Err(format!("unknown pattern '{other}'")),
    };
    let rows: usize = parsed_flag(args, "--rows", 65536)?;
    let cols: usize = parsed_flag(args, "--cols", 64)?;
    let d: usize = parsed_flag(args, "--d", 16)?;
    let k: usize = parsed_flag(args, "--k", 4)?;
    let seed: u64 = parsed_flag(args, "--seed", 42)?;
    let dir = flag_value(args, "--out-dir").ok_or("missing --out-dir")?;
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mats = generate_collection(pattern, rows, cols, d, k, seed);
    for (i, m) in mats.iter().enumerate() {
        let path = format!("{dir}/mat_{i:03}.mtx");
        io::write_matrix_market(&path, m).map_err(|e| e.to_string())?;
        eprintln!("wrote {path} ({} nnz)", m.nnz());
    }
    Ok(())
}
